package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestReadSSE(t *testing.T) {
	stream := "event: job\ndata: {\"id\":\"job-000001\"}\n\n" +
		"event: state\ndata: {\"seq\":0,\"type\":\"state\",\"state\":\"queued\"}\n\n" +
		"event: log\ndata: {\"seq\":1,\"type\":\"log\",\"message\":\"shard 1/2 done\"}\n\n"
	type got struct{ event, data string }
	var events []got
	err := readSSE(strings.NewReader(stream), func(event string, data []byte) error {
		events = append(events, got{event, string(data)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("parsed %d events, want 3", len(events))
	}
	if events[0].event != "job" || !strings.Contains(events[0].data, "job-000001") {
		t.Errorf("first event = %+v, want the job header", events[0])
	}
	if events[1].event != "state" || events[2].event != "log" {
		t.Errorf("event types = %s, %s; want state, log", events[1].event, events[2].event)
	}
}

func TestReadSSESpecFieldParsing(t *testing.T) {
	// Per the SSE spec: no space after the field colon is valid, at most
	// one leading space is stripped, and successive data lines of one
	// event join with newlines.
	stream := "event:ping\ndata:line1\ndata: line2\ndata:  spaced\n\n" +
		"data:solo\n\n"
	type got struct{ event, data string }
	var events []got
	err := readSSE(strings.NewReader(stream), func(event string, data []byte) error {
		events = append(events, got{event, string(data)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []got{
		{"ping", "line1\nline2\n spaced"},
		{"", "solo"},
	}
	if len(events) != len(want) {
		t.Fatalf("parsed %d events, want %d", len(events), len(want))
	}
	for i := range want {
		if events[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, events[i], want[i])
		}
	}
}

func TestReadSSEStopsOnHandlerError(t *testing.T) {
	stream := "event: a\ndata: 1\n\nevent: b\ndata: 2\n\n"
	calls := 0
	err := readSSE(strings.NewReader(stream), func(string, []byte) error {
		calls++
		return errTest
	})
	if err != errTest {
		t.Fatalf("got %v, want the handler's error", err)
	}
	if calls != 1 {
		t.Errorf("handler called %d times after erroring, want 1", calls)
	}
}

var errTest = &APIError{StatusCode: 418, Message: "test"}

// sse builds one well-formed job event frame with its id: cursor.
func sse(typ string, seq int, payload string) string {
	return fmt.Sprintf("event: %s\nid: %d\ndata: %s\n\n", typ, seq, payload)
}

func logFrame(seq int) string {
	return sse("log", seq, fmt.Sprintf(`{"seq":%d,"type":"log","message":"line %d"}`, seq, seq))
}

func doneFrame(seq int) string {
	return sse("state", seq, fmt.Sprintf(`{"seq":%d,"type":"state","state":"done"}`, seq))
}

const jobFrame = "event: job\ndata: {\"id\":\"job-000001\",\"state\":\"running\"}\n\n"

// TestWatchStreamResilience drives Watch against a scripted server: each
// entry of conns is the raw SSE body one connection attempt receives before
// the server severs it. The client must survive mid-event disconnects
// (resuming via ?from=), deduplicate replay overlap by sequence number, and
// skip malformed frames — delivering every event exactly once in order.
func TestWatchStreamResilience(t *testing.T) {
	cases := []struct {
		name string
		// conns are the scripted SSE bodies, one per connection attempt.
		conns []string
		// wantFrom records the expected from= query of each connection
		// ("" = no from parameter).
		wantFrom []string
		wantSeqs []int
	}{
		{
			name: "mid-event disconnect resumes from last id",
			conns: []string{
				jobFrame + logFrame(0) + "event: log\nid: 1\ndata: {\"seq\":1,", // severed mid-frame
				jobFrame + logFrame(1) + doneFrame(2),
			},
			wantFrom: []string{"", "1"},
			wantSeqs: []int{0, 1, 2},
		},
		{
			name: "replay overlap deduplicated by seq",
			conns: []string{
				jobFrame + logFrame(0) + logFrame(1), // severed between frames
				// This server ignores the resume cursor and replays from 0.
				jobFrame + logFrame(0) + logFrame(1) + logFrame(2) + doneFrame(3),
			},
			wantFrom: []string{"", "2"},
			wantSeqs: []int{0, 1, 2, 3},
		},
		{
			name: "malformed frame skipped",
			conns: []string{
				jobFrame + logFrame(0) +
					"event: log\nid: 1\ndata: {not json at all\n\n" +
					"event: state\ndata: []\n\n" +
					logFrame(1) + doneFrame(2),
			},
			wantFrom: []string{""},
			wantSeqs: []int{0, 1, 2},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var (
				mu    sync.Mutex
				conn  int
				froms []string
			)
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/v1/jobs/job-000001" {
					w.Header().Set("Content-Type", "application/json")
					fmt.Fprint(w, `{"id":"job-000001","state":"done"}`)
					return
				}
				mu.Lock()
				i := conn
				conn++
				froms = append(froms, r.URL.Query().Get("from"))
				mu.Unlock()
				if i >= len(tc.conns) {
					http.Error(w, "script exhausted", http.StatusTeapot)
					return
				}
				w.Header().Set("Content-Type", "text/event-stream")
				fmt.Fprint(w, tc.conns[i])
				// Returning severs the connection (possibly mid-frame).
			}))
			defer srv.Close()

			var seqs []int
			st, err := New(srv.URL, srv.Client()).Watch(context.Background(), "job-000001", func(ev Event) {
				seqs = append(seqs, ev.Seq)
			})
			if err != nil {
				t.Fatalf("Watch: %v", err)
			}
			if st.State != "done" {
				t.Errorf("final state = %s, want done", st.State)
			}
			if len(seqs) != len(tc.wantSeqs) {
				t.Fatalf("delivered seqs %v, want %v", seqs, tc.wantSeqs)
			}
			for i := range seqs {
				if seqs[i] != tc.wantSeqs[i] {
					t.Fatalf("delivered seqs %v, want %v", seqs, tc.wantSeqs)
				}
			}
			mu.Lock()
			defer mu.Unlock()
			if len(froms) != len(tc.wantFrom) {
				t.Fatalf("made %d connections (from= %v), want %d", len(froms), froms, len(tc.wantFrom))
			}
			for i := range froms {
				if froms[i] != tc.wantFrom[i] {
					t.Errorf("connection %d resumed with from=%q, want %q", i, froms[i], tc.wantFrom[i])
				}
			}
		})
	}
}

// TestWatchGivesUpAfterRepeatedFailures: a server that always severs the
// stream without progress exhausts the bounded reconnect budget instead of
// looping forever.
func TestWatchGivesUpAfterRepeatedFailures(t *testing.T) {
	conns := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conns++
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, jobFrame) // preamble only, then sever: no progress
	}))
	defer srv.Close()
	_, err := New(srv.URL, srv.Client()).Watch(context.Background(), "job-000001", nil)
	if err == nil || !strings.Contains(err.Error(), "giving up after") {
		t.Fatalf("Watch = %v, want a bounded give-up error", err)
	}
	if conns < 2 {
		t.Errorf("only %d connections; the client should have retried", conns)
	}
}

// TestWatchStopsOnAPIError: a coherent HTTP error (job evicted: 404) is
// fatal — no reconnect storm against a server that answered decisively.
func TestWatchStopsOnAPIError(t *testing.T) {
	conns := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conns++
		http.Error(w, `{"error":"no such job"}`, http.StatusNotFound)
	}))
	defer srv.Close()
	_, err := New(srv.URL, srv.Client()).Watch(context.Background(), "job-gone", nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Fatalf("Watch = %v, want a 404 APIError", err)
	}
	if conns != 1 {
		t.Errorf("%d connections for a 404, want 1 (no retries)", conns)
	}
}
