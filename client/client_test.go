package client

import (
	"strings"
	"testing"
)

func TestReadSSE(t *testing.T) {
	stream := "event: job\ndata: {\"id\":\"job-000001\"}\n\n" +
		"event: state\ndata: {\"seq\":0,\"type\":\"state\",\"state\":\"queued\"}\n\n" +
		"event: log\ndata: {\"seq\":1,\"type\":\"log\",\"message\":\"shard 1/2 done\"}\n\n"
	type got struct{ event, data string }
	var events []got
	err := readSSE(strings.NewReader(stream), func(event string, data []byte) error {
		events = append(events, got{event, string(data)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("parsed %d events, want 3", len(events))
	}
	if events[0].event != "job" || !strings.Contains(events[0].data, "job-000001") {
		t.Errorf("first event = %+v, want the job header", events[0])
	}
	if events[1].event != "state" || events[2].event != "log" {
		t.Errorf("event types = %s, %s; want state, log", events[1].event, events[2].event)
	}
}

func TestReadSSESpecFieldParsing(t *testing.T) {
	// Per the SSE spec: no space after the field colon is valid, at most
	// one leading space is stripped, and successive data lines of one
	// event join with newlines.
	stream := "event:ping\ndata:line1\ndata: line2\ndata:  spaced\n\n" +
		"data:solo\n\n"
	type got struct{ event, data string }
	var events []got
	err := readSSE(strings.NewReader(stream), func(event string, data []byte) error {
		events = append(events, got{event, string(data)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []got{
		{"ping", "line1\nline2\n spaced"},
		{"", "solo"},
	}
	if len(events) != len(want) {
		t.Fatalf("parsed %d events, want %d", len(events), len(want))
	}
	for i := range want {
		if events[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, events[i], want[i])
		}
	}
}

func TestReadSSEStopsOnHandlerError(t *testing.T) {
	stream := "event: a\ndata: 1\n\nevent: b\ndata: 2\n\n"
	calls := 0
	err := readSSE(strings.NewReader(stream), func(string, []byte) error {
		calls++
		return errTest
	})
	if err != errTest {
		t.Fatalf("got %v, want the handler's error", err)
	}
	if calls != 1 {
		t.Errorf("handler called %d times after erroring, want 1", calls)
	}
}

var errTest = &APIError{StatusCode: 418, Message: "test"}
