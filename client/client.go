// Package client is the Go client for the galactosd job service. It
// speaks the service's HTTP/JSON API: job submission is a galactos.Request
// serialized as-is (the facade's entrypoint is the wire schema), progress
// arrives as Server-Sent Events, and results come back in the versioned
// resultio encoding — decoded here into the same *galactos.Result a direct
// Run produces, byte lineage intact.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"galactos"
	"galactos/internal/core"
	"galactos/internal/service"
)

// Wire types, shared verbatim with the server.
type (
	State     = service.State
	JobStatus = service.JobStatus
	Event     = service.Event
	Stats     = service.Stats
)

// Client talks to one galactosd server.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a client for the server at base (e.g. "http://localhost:8080").
// httpClient may be nil for http.DefaultClient.
func New(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: httpClient}
}

// APIError is a non-2xx response from the server.
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("galactosd: %s (HTTP %d)", e.Message, e.StatusCode)
}

func (c *Client) do(ctx context.Context, method, path string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return apiError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func apiError(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(data, &e) != nil || e.Error == "" {
		e.Error = strings.TrimSpace(string(data))
	}
	return &APIError{StatusCode: resp.StatusCode, Message: e.Error}
}

// Submit enqueues a request and returns the accepted job's status without
// waiting for it to run. Requests must carry their catalog as Catalog
// (inline) or Path (server-local file); Source does not serialize.
func (c *Client) Submit(ctx context.Context, req galactos.Request) (JobStatus, error) {
	var st JobStatus
	data, err := json.Marshal(req)
	if err != nil {
		return st, err
	}
	err = c.do(ctx, http.MethodPost, "/v1/jobs", bytes.NewReader(data), &st)
	return st, err
}

// SubmitStream submits a request and follows its event stream to
// completion, invoking onEvent (when non-nil) for each event. The
// submitting connection owns the job: cancelling ctx (or disconnecting)
// cancels the job on the server. Returns the job's final status.
func (c *Client) SubmitStream(ctx context.Context, req galactos.Request, onEvent func(Event)) (JobStatus, error) {
	data, err := json.Marshal(req)
	if err != nil {
		return JobStatus{}, err
	}
	return c.stream(ctx, http.MethodPost, "/v1/jobs?stream", bytes.NewReader(data), onEvent)
}

// Watch follows an existing job's event stream to completion, replaying
// history first. Watching does not own the job: cancelling ctx stops
// watching, not the job. Returns the job's final status.
func (c *Client) Watch(ctx context.Context, id string, onEvent func(Event)) (JobStatus, error) {
	return c.stream(ctx, http.MethodGet, "/v1/jobs/"+id+"/events", nil, onEvent)
}

// Wait blocks until the job terminalizes and returns its final status.
func (c *Client) Wait(ctx context.Context, id string) (JobStatus, error) {
	return c.Watch(ctx, id, nil)
}

// stream runs one SSE request, dispatching events until the job
// terminalizes, then fetches and returns the final status.
func (c *Client) stream(ctx context.Context, method, path string, body io.Reader, onEvent func(Event)) (JobStatus, error) {
	var st JobStatus
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return st, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, apiError(resp)
	}

	id := ""
	err = readSSE(resp.Body, func(event string, data []byte) error {
		switch event {
		case "job":
			if err := json.Unmarshal(data, &st); err != nil {
				return err
			}
			id = st.ID
		case "state", "log":
			var ev Event
			if err := json.Unmarshal(data, &ev); err != nil {
				return err
			}
			if onEvent != nil {
				onEvent(ev)
			}
		}
		return nil
	})
	if err != nil {
		return st, err
	}
	if id == "" {
		return st, fmt.Errorf("galactosd: stream ended without a job event")
	}
	return c.Status(ctx, id)
}

// readSSE parses a Server-Sent Events stream, calling handle for each
// complete event, until the stream ends. Field parsing follows the SSE
// spec: the field value starts after the colon with at most one leading
// space stripped ("data:x" and "data: x" both carry "x"), and successive
// data lines of one event are joined with newlines — so events survive a
// proxy that reflows them.
func readSSE(r io.Reader, handle func(event string, data []byte) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	value := func(line, field string) string {
		return strings.TrimPrefix(strings.TrimPrefix(line, field), " ")
	}
	event, hasData := "", false
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if event != "" || hasData {
				if err := handle(event, data); err != nil {
					return err
				}
			}
			event, data, hasData = "", nil, false
		case strings.HasPrefix(line, "event:"):
			event = value(line, "event:")
		case strings.HasPrefix(line, "data:"):
			if hasData {
				data = append(data, '\n')
			}
			data = append(data, value(line, "data:")...)
			hasData = true
		}
	}
	return sc.Err()
}

// Status fetches one job's status.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Jobs lists all job statuses in submission order.
func (c *Client) Jobs(ctx context.Context) ([]JobStatus, error) {
	var out []JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// ResultBytes fetches a done job's result in the raw resultio encoding —
// the exact bytes the server computed or cached.
func (c *Client) ResultBytes(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Result fetches and decodes a done job's result.
func (c *Client) Result(ctx context.Context, id string) (*galactos.Result, error) {
	data, err := c.ResultBytes(ctx, id)
	if err != nil {
		return nil, err
	}
	return core.ReadResult(bytes.NewReader(data))
}

// Cancel cancels a job and returns its status.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Stats fetches the server-wide counters.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var st Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}

// Healthy reports whether the server answers its liveness probe.
func (c *Client) Healthy(ctx context.Context) bool {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil) == nil
}
