// Package client is the Go client for the galactosd job service. It
// speaks the service's HTTP/JSON API: job submission is a galactos.Request
// serialized as-is (the facade's entrypoint is the wire schema), progress
// arrives as Server-Sent Events, and results come back in the versioned
// resultio encoding — decoded here into the same *galactos.Result a direct
// Run produces, byte lineage intact.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"galactos"
	"galactos/internal/core"
	"galactos/internal/retry"
	"galactos/internal/service"
)

// Wire types, shared verbatim with the server.
type (
	State     = service.State
	JobStatus = service.JobStatus
	Event     = service.Event
	Stats     = service.Stats
)

// Client talks to one galactosd server.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a client for the server at base (e.g. "http://localhost:8080").
// httpClient may be nil for http.DefaultClient.
func New(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: httpClient}
}

// APIError is a non-2xx response from the server.
type APIError struct {
	StatusCode int
	Message    string
	// RetryAfter is the server's Retry-After hint on backpressure
	// responses (429 queue-full, 503 draining), zero when absent.
	// SubmitRetry honors it as a floor under its own backoff.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("galactosd: %s (HTTP %d)", e.Message, e.StatusCode)
}

// Temporary reports whether resubmitting the same request later can
// succeed: true for the backpressure statuses (429, 503).
func (e *APIError) Temporary() bool {
	return e.StatusCode == http.StatusTooManyRequests ||
		e.StatusCode == http.StatusServiceUnavailable
}

func (c *Client) do(ctx context.Context, method, path string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return apiError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func apiError(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(data, &e) != nil || e.Error == "" {
		e.Error = strings.TrimSpace(string(data))
	}
	apiErr := &APIError{StatusCode: resp.StatusCode, Message: e.Error}
	// Only the delay-seconds form of Retry-After is parsed; the HTTP-date
	// form (which this server never sends) is ignored rather than guessed.
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return apiErr
}

// Submit enqueues a request and returns the accepted job's status without
// waiting for it to run. Requests must carry their catalog as Catalog
// (inline) or Path (server-local file); Source does not serialize.
func (c *Client) Submit(ctx context.Context, req galactos.Request) (JobStatus, error) {
	var st JobStatus
	data, err := json.Marshal(req)
	if err != nil {
		return st, err
	}
	err = c.do(ctx, http.MethodPost, "/v1/jobs", bytes.NewReader(data), &st)
	return st, err
}

// SubmitRetry submits like Submit, but retries backpressure rejections —
// 429 (queue full) and 503 (draining) — under pol's backoff schedule,
// bounded by pol.MaxAttempts (the zero Policy gives 4 attempts, 10ms
// doubling to 500ms, ±20% deterministic jitter). When the server sends a
// Retry-After hint, the sleep before the next attempt is at least that
// long: the server knows its drain better than any client-side schedule.
// Every other failure — 4xx validation, network errors, ctx cancellation —
// returns immediately; retrying can't fix a bad request, and retrying a
// transport error risks double-submitting a job this method can't see.
func (c *Client) SubmitRetry(ctx context.Context, req galactos.Request, pol retry.Policy) (JobStatus, error) {
	maxAttempts := pol.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 4
	}
	var st JobStatus
	var err error
	for attempt := 1; ; attempt++ {
		st, err = c.Submit(ctx, req)
		var apiErr *APIError
		if err == nil || !errors.As(err, &apiErr) || !apiErr.Temporary() {
			return st, err
		}
		if attempt >= maxAttempts {
			return st, fmt.Errorf("galactosd: giving up after %d submit attempts: %w", attempt, err)
		}
		sleep := pol.Backoff("submit", attempt)
		if apiErr.RetryAfter > sleep {
			sleep = apiErr.RetryAfter
		}
		timer := time.NewTimer(sleep)
		select {
		case <-ctx.Done():
			timer.Stop()
			return st, ctx.Err()
		case <-timer.C:
		}
	}
}

// SubmitStream submits a request and follows its event stream to
// completion, invoking onEvent (when non-nil) for each event. The
// submitting connection owns the job: cancelling ctx (or disconnecting)
// cancels the job on the server — which is exactly why this call does NOT
// auto-reconnect (the job is gone the moment the stream drops; resubmission
// is a policy decision the caller owns). Returns the job's final status.
func (c *Client) SubmitStream(ctx context.Context, req galactos.Request, onEvent func(Event)) (JobStatus, error) {
	data, err := json.Marshal(req)
	if err != nil {
		return JobStatus{}, err
	}
	cur := streamCursor{lastSeq: -1}
	if err := c.streamOnce(ctx, http.MethodPost, "/v1/jobs?stream", bytes.NewReader(data), &cur, onEvent); err != nil {
		return cur.st, err
	}
	if cur.id == "" {
		return cur.st, fmt.Errorf("galactosd: stream ended without a job event")
	}
	return c.Status(ctx, cur.id)
}

// reconnectAttempts bounds consecutive failed Watch reconnects (attempts
// that deliver no new event); any delivered event resets the budget, so a
// long job under a flaky network keeps its watcher as long as progress
// trickles through.
const reconnectAttempts = 5

// Watch follows an existing job's event stream to completion, replaying
// history first. Watching does not own the job: cancelling ctx stops
// watching, not the job — which is why Watch may transparently reconnect.
// A dropped stream (server restart of the HTTP layer, injected severance,
// proxy timeout) is resumed from the last received event's sequence number
// via the ?from= cursor, with bounded backoff between attempts; events are
// deduplicated by sequence number, so the caller observes each exactly
// once even when a reconnect replays overlap. Returns the job's final
// status.
func (c *Client) Watch(ctx context.Context, id string, onEvent func(Event)) (JobStatus, error) {
	cur := streamCursor{lastSeq: -1}
	pol := retry.Policy{}
	failures := 0
	for {
		before := cur.lastSeq
		path := "/v1/jobs/" + id + "/events"
		if cur.lastSeq >= 0 {
			path += "?from=" + strconv.Itoa(cur.lastSeq+1)
		}
		err := c.streamOnce(ctx, http.MethodGet, path, nil, &cur, onEvent)
		if cur.terminal {
			return c.Status(ctx, id)
		}
		if cerr := ctx.Err(); cerr != nil {
			return cur.st, cerr
		}
		// The server answered coherently (4xx/5xx): reconnecting cannot
		// help — the job was evicted, or the server is draining.
		var apiErr *APIError
		if errors.As(err, &apiErr) {
			return cur.st, err
		}
		if cur.lastSeq > before {
			failures = 0
		}
		failures++
		if failures >= reconnectAttempts {
			if err == nil {
				err = fmt.Errorf("stream ended before the job terminalized")
			}
			return cur.st, fmt.Errorf("galactosd: giving up after %d reconnects: %w", failures, err)
		}
		timer := time.NewTimer(pol.Backoff("watch "+id, failures))
		select {
		case <-ctx.Done():
			timer.Stop()
			return cur.st, ctx.Err()
		case <-timer.C:
		}
	}
}

// Wait blocks until the job terminalizes and returns its final status.
func (c *Client) Wait(ctx context.Context, id string) (JobStatus, error) {
	return c.Watch(ctx, id, nil)
}

// streamCursor carries resume state across a watch's reconnects.
type streamCursor struct {
	st       JobStatus
	id       string // job id from the stream preamble
	lastSeq  int    // highest event sequence delivered; -1 before the first
	terminal bool   // a terminal state event was delivered
}

// streamOnce runs one SSE connection, dispatching events into the cursor
// until the stream ends (job terminal, connection severed, or ctx done).
// Events at or below the cursor's sequence are duplicates from replay
// overlap and are dropped; frames that fail to parse are skipped, not
// fatal — one corrupt frame must not kill a resumable stream.
func (c *Client) streamOnce(ctx context.Context, method, path string, body io.Reader, cur *streamCursor, onEvent func(Event)) error {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set("Accept", "text/event-stream")
	if cur.lastSeq >= 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(cur.lastSeq))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}

	return readSSE(resp.Body, func(event string, data []byte) error {
		switch event {
		case "job":
			var st JobStatus
			if err := json.Unmarshal(data, &st); err != nil {
				return nil // malformed preamble frame: skip
			}
			cur.st = st
			cur.id = st.ID
		case "state", "log":
			var ev Event
			if err := json.Unmarshal(data, &ev); err != nil {
				return nil // malformed frame: skip
			}
			if ev.Seq <= cur.lastSeq {
				return nil // replay overlap after a resume: already delivered
			}
			cur.lastSeq = ev.Seq
			if ev.Type == "state" && ev.State.Terminal() {
				cur.terminal = true
			}
			if onEvent != nil {
				onEvent(ev)
			}
		}
		return nil
	})
}

// readSSE parses a Server-Sent Events stream, calling handle for each
// complete event, until the stream ends. Field parsing follows the SSE
// spec: the field value starts after the colon with at most one leading
// space stripped ("data:x" and "data: x" both carry "x"), and successive
// data lines of one event are joined with newlines — so events survive a
// proxy that reflows them.
func readSSE(r io.Reader, handle func(event string, data []byte) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	value := func(line, field string) string {
		return strings.TrimPrefix(strings.TrimPrefix(line, field), " ")
	}
	event, hasData := "", false
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if event != "" || hasData {
				if err := handle(event, data); err != nil {
					return err
				}
			}
			event, data, hasData = "", nil, false
		case strings.HasPrefix(line, "event:"):
			event = value(line, "event:")
		case strings.HasPrefix(line, "data:"):
			if hasData {
				data = append(data, '\n')
			}
			data = append(data, value(line, "data:")...)
			hasData = true
		}
	}
	return sc.Err()
}

// Status fetches one job's status.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Jobs lists all job statuses in submission order.
func (c *Client) Jobs(ctx context.Context) ([]JobStatus, error) {
	var out []JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// ResultBytes fetches a done job's result in the raw resultio encoding —
// the exact bytes the server computed or cached.
func (c *Client) ResultBytes(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Result fetches and decodes a done job's result.
func (c *Client) Result(ctx context.Context, id string) (*galactos.Result, error) {
	data, err := c.ResultBytes(ctx, id)
	if err != nil {
		return nil, err
	}
	return core.ReadResult(bytes.NewReader(data))
}

// Cancel cancels a job and returns its status.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Stats fetches the server-wide counters.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var st Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}

// Healthy reports whether the server answers its liveness probe.
func (c *Client) Healthy(ctx context.Context) bool {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil) == nil
}

// Ready reports whether the server answers its readiness probe — alive
// AND currently accepting submissions (not draining, queue not full).
func (c *Client) Ready(ctx context.Context) bool {
	return c.do(ctx, http.MethodGet, "/readyz", nil, nil) == nil
}
