package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"galactos"
	"galactos/internal/retry"
)

// fastPolicy keeps retry sleeps at test speed.
var fastPolicy = retry.Policy{BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}

func TestSubmitRetryRecoversFromBackpressure(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"job queue is full"}`))
		case 2:
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"server is draining"}`))
		default:
			w.WriteHeader(http.StatusAccepted)
			w.Write([]byte(`{"id":"job-000001","state":"queued","key":"k"}`))
		}
	}))
	defer srv.Close()

	st, err := New(srv.URL, nil).SubmitRetry(context.Background(), galactos.Request{}, fastPolicy)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "job-000001" {
		t.Errorf("accepted job = %+v", st)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d submissions, want 3 (two rejections, one success)", got)
	}
}

func TestSubmitRetryGivesUpAfterMaxAttempts(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"server is draining"}`))
	}))
	defer srv.Close()

	pol := fastPolicy
	pol.MaxAttempts = 2
	_, err := New(srv.URL, nil).SubmitRetry(context.Background(), galactos.Request{}, pol)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want a wrapped 503 APIError", err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("server saw %d submissions, want exactly MaxAttempts=2", got)
	}
}

// TestSubmitRetryFatalErrorsReturnImmediately: a validation rejection must
// never burn the backoff schedule — the request won't get better.
func TestSubmitRetryFatalErrorsReturnImmediately(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"invalid request: request has no catalog"}`))
	}))
	defer srv.Close()

	_, err := New(srv.URL, nil).SubmitRetry(context.Background(), galactos.Request{}, fastPolicy)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("err = %v, want a 400 APIError", err)
	}
	if apiErr.Temporary() {
		t.Error("400 classified Temporary")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d submissions, want 1 (no retry of fatal errors)", got)
	}
}

// TestAPIErrorCarriesRetryAfter checks the header parse without sleeping:
// the hint rides the error for callers running their own schedule.
func TestAPIErrorCarriesRetryAfter(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"server is draining"}`))
	}))
	defer srv.Close()

	_, err := New(srv.URL, nil).Submit(context.Background(), galactos.Request{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want APIError", err)
	}
	if apiErr.RetryAfter != 7*time.Second {
		t.Errorf("RetryAfter = %v, want 7s", apiErr.RetryAfter)
	}
	if !apiErr.Temporary() {
		t.Error("503 not classified Temporary")
	}
}
