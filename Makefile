# Build/test/benchmark entry points (documented in README.md).

GO ?= go

.PHONY: all build test vet bench bench-exp ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Short-mode benchmark smoke: every benchmark runs one iteration, which
# catches regressions in the bench harness without laptop-hours of timing.
bench:
	$(GO) test -run=^$$ -bench=. -benchtime=1x ./...

# A fast pass over the paper-experiment suite (see DESIGN.md's experiment
# index; the documented full run lives in EXPERIMENTS.md).
bench-exp:
	$(GO) run ./cmd/galactos-bench -exp all -scale small

ci: build vet test bench

clean:
	$(GO) clean ./...
