# Build/test/benchmark entry points (documented in README.md).

GO ?= go

.PHONY: all build test test-race vet fmt-check bench bench-exp \
	bench-baseline bench-check bench-scaling-baseline scaling-check \
	test-generic cross-smoke examples-smoke scenario-smoke \
	service-smoke chaos-smoke crash-smoke ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race detector over the concurrency surfaces: the engine worker pool, the
# sharded checkpointing pipeline, the execution layer's cancellation paths,
# the scenario registry's multi-stage workloads, the galactosd job server
# (worker pool, SSE streaming, disconnect-cancel) with its client, and the
# fault-injection/retry layers whose counters and plans are hit from every
# worker goroutine.
test-race:
	$(GO) test -race ./internal/core/... ./internal/shard/... ./internal/exec/... \
		./internal/scenario/... ./internal/service/... ./client/... \
		./internal/faultpoint/... ./internal/retry/... ./internal/journal/...

vet:
	$(GO) vet ./...

# Formatting drift fails the pipeline.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Short-mode benchmark smoke: every benchmark runs one iteration, which
# catches regressions in the bench harness without laptop-hours of timing.
bench:
	$(GO) test -run=^$$ -bench=. -benchtime=1x ./...

# A fast pass over the paper-experiment suite (see DESIGN.md's experiment
# index; the documented full run lives in EXPERIMENTS.md).
bench-exp:
	$(GO) run ./cmd/galactos-bench -exp all -scale small

# Refresh the committed benchmark-regression floor. Run after an intentional
# performance change (on the machine class CI uses, ideally) and commit the
# resulting BENCH_baseline.json.
bench-baseline:
	$(GO) run ./cmd/galactos-bench -exp perfstat -perf-json BENCH_baseline.json

# The CI benchmark gate: measure the pinned perfstat scenario fresh and fail
# on >25% pairs/sec regression against the committed baseline. Set
# BENCHDIFF_SUMMARY to a file path (CI uses $GITHUB_STEP_SUMMARY) to also
# append benchdiff's markdown comparison table there.
bench-check:
	$(GO) run ./cmd/galactos-bench -exp perfstat -perf-json BENCH_fresh.json
	$(GO) run ./cmd/benchdiff -baseline BENCH_baseline.json -fresh BENCH_fresh.json \
		-threshold 0.25 $(if $(BENCHDIFF_SUMMARY),-summary "$(BENCHDIFF_SUMMARY)")

# Refresh the committed scaling baseline: the pinned scenario's 1/2/4/8-worker
# strong-scaling sweep with GOMAXPROCS pinned per point. Run on a host with
# >= 4 cores (ideally CI's machine class) and commit the resulting
# BENCH_scaling_baseline.json.
bench-scaling-baseline:
	$(GO) run ./cmd/galactos-bench -exp scaling -scaling-json BENCH_scaling_baseline.json

# The CI scaling gate: remeasure the efficiency curve and fail when the
# 4-worker parallel efficiency falls below the committed floor. On hosts with
# fewer than 4 CPUs the floor is reported but not enforced (efficiency is
# core-starved there by construction, not regressed).
scaling-check:
	$(GO) run ./cmd/galactos-bench -exp scaling -scaling-json BENCH_scaling_fresh.json
	$(GO) run ./cmd/benchdiff -scaling-baseline BENCH_scaling_baseline.json \
		-scaling-fresh BENCH_scaling_fresh.json -eff-floor 0.40 -eff-floor-workers 4 \
		$(if $(BENCHDIFF_SUMMARY),-summary "$(BENCHDIFF_SUMMARY)")

# Second pass of the kernel-adjacent test suites with the portable lane
# primitives forced, so the generic bodies stay correct on AVX-512 CI hosts
# where the default pass never exercises them.
test-generic:
	GALACTOS_LANE_DISPATCH=generic $(GO) test -count=1 ./internal/sphharm/... ./internal/core/...

# Cross-compile smoke: the build must stay portable (arm64 has no asm lane
# bodies — the generic path must fill in) and legal at the highest amd64
# feature level. Build-only; no emulation is available to run the result.
cross-smoke:
	GOOS=linux GOARCH=arm64 $(GO) build ./...
	GOOS=linux GOARCH=amd64 GOAMD64=v4 $(GO) build ./...

# Run every documented example entry point at tiny N: facade refactors
# cannot silently break them. Each example takes a -n flag for exactly this.
examples-smoke:
	@set -e; for ex in examples/*/; do \
		echo "== $$ex =="; $(GO) run ./$$ex -n 1200 > /dev/null; done
	@echo "all examples ran clean"

# Golden end-to-end gate for the galactosd service: start a server, submit
# a job over HTTP with streamed progress, verify the result is
# bitwise-equal to a direct in-process Run, resubmit and assert the answer
# comes from the result cache (hit counter + byte-identical payload).
service-smoke:
	$(GO) run ./cmd/galactos-load -smoke -n 800

# Run every scenario-registry entry end-to-end under the race detector:
# small N, the sharded backend at 2 shards (real cross-goroutine traffic),
# every invariant checked. Set SCENARIO_SUMMARY to a file path (CI uses
# $GITHUB_STEP_SUMMARY) to also append the per-scenario markdown table.
scenario-smoke:
	$(GO) run -race ./cmd/galactos -scenario all -n 900 -seed 1 \
		-backend sharded -shards 2 \
		$(if $(SCENARIO_SUMMARY),-scenario-summary "$(SCENARIO_SUMMARY)")

# Chaos sweep under the race detector: every case pins a clean run's bitwise
# hash, re-runs under a fixed-seed fault plan (injected errors, delays, and
# panics at every registered faultpoint), and must reproduce the hash
# exactly; the sweep also fails if any registered faultpoint never fired.
# Set CHAOS_SUMMARY to a file path (CI uses $GITHUB_STEP_SUMMARY) to also
# append the per-case and injected-vs-recovered markdown tables there.
chaos-smoke:
	$(GO) run -race ./cmd/galactos -chaos -n 500 -seed 1 \
		$(if $(CHAOS_SUMMARY),-chaos-summary "$(CHAOS_SUMMARY)")

# Subprocess crash sweep: galactosd (built with -race) launched as a real
# process on a throwaway -state-dir, SIGKILLed at faultpoint-scheduled
# moments — mid-sharded-job, with a job queued, after completion, with its
# cache entry corrupted on disk — then restarted on the same state dir and
# required to serve bitwise-identical results via journal replay, shard
# checkpoint resume, and the persistent cache. Set CHAOS_SUMMARY to a file
# path (CI uses $GITHUB_STEP_SUMMARY) to also append the per-case table.
crash-smoke:
	$(GO) build -race -o /tmp/galactosd-crash-smoke ./cmd/galactosd
	$(GO) run -race ./cmd/galactos -chaos-proc -n 400 -seed 1 \
		-galactosd /tmp/galactosd-crash-smoke \
		$(if $(CHAOS_SUMMARY),-chaos-summary "$(CHAOS_SUMMARY)")

ci: fmt-check build vet test bench

clean:
	$(GO) clean ./...
	rm -f BENCH_fresh.json BENCH_scaling_fresh.json
