// Package galactos computes the isotropic and anisotropic galaxy 3-point
// correlation functions (3PCF) with the O(N^2) spherical-harmonic multipole
// algorithm of Friesen et al., "Galactos: Computing the Anisotropic 3-Point
// Correlation Function for 2 Billion Galaxies" (SC '17).
//
// The only required input is the 3-D positions of the galaxies (plus
// optional weights). Every computation goes through the one canonical
// entrypoint, Run, with a Request describing the job:
//
//	cat := galactos.GenerateClustered(100000, 500, galactos.DefaultClusterParams(), 1)
//	run, err := galactos.Run(ctx, galactos.Request{
//		Catalog: cat,
//		Config:  galactos.DefaultConfig(),
//	})
//	// run.Result.IsoZeta(l, b1, b2), run.Result.ZetaM(l1, l2, m, b1, b2)
//
// The Request's Backend spec scales the same job out-of-core (sharded, with
// checkpoints and streaming ingestion) or across simulated MPI ranks
// (dist); serialized to JSON, the identical Request is the wire schema of
// the galactosd job service (see cmd/galactosd and the client package). The
// legacy Compute*/ShardedCompute variants remain as deprecated thin
// wrappers over Run; see DESIGN.md, "Service layer", for the deprecation
// policy.
//
// The package also exposes the distributed pipeline (k-d partitioning, halo
// exchange, reduction) over an in-process message-passing runtime, the
// 2-point correlation function, brute-force verification oracles, jackknife
// covariance estimation, and synthetic catalog generators — everything
// needed to reproduce the paper's evaluation. See DESIGN.md for the system
// inventory and EXPERIMENTS.md for the measured results.
package galactos

import (
	"context"
	"time"

	"galactos/internal/bruteforce"
	"galactos/internal/catalog"
	"galactos/internal/core"
	"galactos/internal/estimator"
	"galactos/internal/exec"
	"galactos/internal/geom"
	"galactos/internal/gridded"
	"galactos/internal/partition"
	"galactos/internal/perfstat"
	"galactos/internal/scenario"
	"galactos/internal/shard"
	"galactos/internal/stats"
	"galactos/internal/twopcf"
)

// Vec3 is a 3-D position or separation (Mpc/h in the paper's units).
type Vec3 = geom.Vec3

// Periodic describes cubic periodic boundaries (L = 0 means open).
type Periodic = geom.Periodic

// Galaxy is one tracer: a position and a weight (negative for randoms).
type Galaxy = catalog.Galaxy

// Catalog is a set of galaxies in a (possibly periodic) volume.
type Catalog = catalog.Catalog

// Config holds the 3PCF computation parameters; start from DefaultConfig.
// Config.Fingerprint is the canonical hash of the normalized configuration
// — the config half of the service result-cache key, and the scenario pin
// in perfstat reports.
type Config = core.Config

// Result holds the accumulated 3PCF multipoles zeta^m_{l1 l2}(r1, r2) and
// derived isotropic multipoles zeta_l(r1, r2).
type Result = core.Result

// Combo identifies one anisotropic channel (l1 <= l2, 0 <= m <= l1).
type Combo = core.Combo

// Breakdown reports where the computation time went (paper Fig. 4).
type Breakdown = core.Breakdown

// RankStats reports per-rank load statistics from a distributed run.
type RankStats = partition.RankStats

// ClusterParams configures the halo-model catalog generator.
type ClusterParams = catalog.ClusterParams

// BAOParams configures the BAO-shell catalog generator.
type BAOParams = catalog.BAOParams

// Line-of-sight conventions (paper Sec. 3.1).
const (
	// LOSRadial rotates each primary's frame so the observer direction is
	// the z axis (the paper's rotation step, for survey geometries).
	LOSRadial = core.LOSRadial
	// LOSPlaneParallel uses the global z axis (simulation boxes).
	LOSPlaneParallel = core.LOSPlaneParallel
	// LOSMidpoint builds each pair's frame from the unit bisector of the two
	// position vectors (the Slepian–Eisenstein midpoint convention). The LOS
	// is invariant under pair swap, so the engine's (-1)^l symmetry fold
	// applies, unlike LOSRadial.
	LOSMidpoint = core.LOSMidpoint
)

// Neighbor-finder substrates.
const (
	// FinderKD32 is the paper's mixed-precision k-d tree (default).
	FinderKD32 = core.FinderKD32
	// FinderKD64 is the pure double-precision tree.
	FinderKD64 = core.FinderKD64
	// FinderGrid is the Slepian–Eisenstein cell-grid scheme.
	FinderGrid = core.FinderGrid
)

// Scheduling policies for the primary loop.
const (
	SchedDynamic = core.SchedDynamic
	SchedStatic  = core.SchedStatic
)

// DefaultConfig returns the paper's configuration: Rmax = 200 Mpc/h,
// 20 radial bins, l_max = 10, bucket size 128, mixed precision, dynamic
// scheduling.
func DefaultConfig() Config { return core.DefaultConfig() }

// Backend is one execution strategy of the unified execution layer
// (internal/exec): Local, Sharded, or Distributed. All three run the same
// job descriptor and feed the same telemetry; see DESIGN.md, "Execution
// layer".
type Backend = exec.Backend

// BackendSpec selects and parameterizes a backend from flag-shaped inputs
// (the cmd/galactos -backend surface).
type BackendSpec = exec.Spec

// UnitStats is the uniform per-unit (engine run / shard / rank) report of a
// backend run.
type UnitStats = exec.UnitStats

// RunResult bundles a backend run's outputs: the merged Result, per-unit
// statistics, and the uniform perfstat report.
type RunResult = exec.RunResult

// CatalogSource streams a catalog in chunks; see NewFileSource for the
// out-of-core entry point.
type CatalogSource = catalog.Source

// NewMemorySource adapts an in-memory catalog to the streaming interface.
func NewMemorySource(cat *Catalog) CatalogSource { return catalog.NewMemorySource(cat) }

// NewFileSource streams a catalog file (binary, or CSV for .csv paths)
// without loading it into memory; the sharded backend consumes it
// shard-by-shard, so peak memory stays bounded by one shard.
func NewFileSource(path string) CatalogSource { return catalog.NewFileSource(path) }

// LocalBackend runs the single-node in-memory engine.
func LocalBackend() Backend { return exec.Local{} }

// ShardedBackend runs the bounded-memory out-of-core pipeline. A Log in
// opts becomes the run's progress logger.
func ShardedBackend(nshards int, opts ShardOptions) Backend {
	b := Backend(exec.Sharded{
		NShards:       nshards,
		MaxConcurrent: opts.MaxConcurrent,
		CheckpointDir: opts.CheckpointDir,
		Resume:        opts.Resume,
		Keep:          opts.Keep,
	})
	if opts.Log != nil {
		b = exec.WithLog(b, opts.Log)
	}
	return b
}

// DistributedBackend runs the simulated multi-node pipeline over nranks
// in-process ranks.
func DistributedBackend(nranks int) Backend { return exec.Distributed{Ranks: nranks} }

// RunBackend executes a 3PCF job on any backend under the shared timing and
// perfstat telemetry.
//
// Deprecated: use Run with a Request (set Via for a constructed Backend, or
// the serializable Backend spec).
func RunBackend(ctx context.Context, b Backend, src CatalogSource, cfg Config) (*RunResult, error) {
	return Run(ctx, Request{Source: src, Config: cfg, Via: b})
}

// Compute runs the single-node anisotropic 3PCF over a catalog.
//
// Deprecated: use Run with a Request.
func Compute(cat *Catalog, cfg Config) (*Result, error) {
	return ComputeContext(context.Background(), cat, cfg)
}

// ComputeContext is Compute under a context: cancelling ctx stops the
// worker loop at its next scheduling chunk and returns ctx.Err().
//
// Deprecated: use Run with a Request.
func ComputeContext(ctx context.Context, cat *Catalog, cfg Config) (*Result, error) {
	run, err := Run(ctx, Request{Catalog: cat, Config: cfg})
	if err != nil {
		return nil, err
	}
	return run.Result, nil
}

// ComputeSubset computes with an explicit primary mask (halo copies or
// sub-sample analyses).
func ComputeSubset(cat *Catalog, primary []bool, cfg Config) (*Result, error) {
	return core.ComputeSubset(cat, primary, cfg)
}

// ComputeDistributed runs the full multi-node pipeline of the paper —
// k-d partitioning across nranks ranks (need not be a power of two), halo
// exchange, embarrassingly parallel node-local 3PCF, final reduction — on
// the in-process message-passing runtime. It returns the reduced result and
// per-rank load statistics.
//
// Deprecated: use Run with a Request whose Backend spec names "dist".
func ComputeDistributed(cat *Catalog, nranks int, cfg Config) (*Result, []RankStats, error) {
	run, err := Run(context.Background(), Request{
		Catalog: cat,
		Config:  cfg,
		Via:     exec.Distributed{Ranks: nranks},
	})
	if err != nil {
		return nil, nil, err
	}
	st := make([]RankStats, len(run.Units))
	for i, u := range run.Units {
		st[i] = RankStats{Rank: u.Unit, NOwned: u.NOwned, NHalo: u.NHalo, Pairs: u.Pairs, Elapsed: u.Elapsed}
	}
	return run.Result, st, nil
}

// ShardStats reports per-shard load statistics from a sharded run.
type ShardStats = shard.Stats

// ShardOptions configures the sharded out-of-core pipeline: shard count,
// concurrency bound, checkpoint directory, and resume-from-checkpoint.
type ShardOptions = shard.Options

// ShardedCompute runs the bounded-memory sharded pipeline (DESIGN.md,
// "shard"): the catalog is cut into nshards halo-padded spatial shards with
// the same k-d partitioner as the distributed path, each shard's node-local
// 3PCF runs in turn, and the partial multipoles are merged. The result
// matches a single-shot run to floating-point rounding while the peak
// engine footprint is that of one shard.
//
// Deprecated: use Run with a Request whose Backend spec names "sharded".
func ShardedCompute(cat *Catalog, nshards int, cfg Config) (*Result, []ShardStats, error) {
	return ComputeSharded(cat, cfg, ShardOptions{NShards: nshards})
}

// ComputeSharded is ShardedCompute with full options: bounded shard
// concurrency, per-shard checkpoints of the partial Result in the versioned
// binary format, and resume-from-checkpoint after a killed run.
//
// Deprecated: use Run with a Request whose Backend spec names "sharded".
func ComputeSharded(cat *Catalog, cfg Config, opts ShardOptions) (*Result, []ShardStats, error) {
	return ComputeShardedContext(context.Background(), cat, cfg, opts)
}

// ComputeShardedContext is ComputeSharded under a context: cancellation
// stops the pipeline promptly and leaves completed shards' checkpoints (and
// the manifest) on disk, so the run is resumable like a killed one.
//
// Deprecated: use Run with a Request whose Backend spec names "sharded".
func ComputeShardedContext(ctx context.Context, cat *Catalog, cfg Config, opts ShardOptions) (*Result, []ShardStats, error) {
	return runSharded(ctx, Request{Catalog: cat, Config: cfg, Log: opts.Log}, opts, false)
}

// ComputeShardedStream runs the sharded pipeline over a streaming catalog
// source (e.g. NewFileSource): the catalog is never loaded whole — three
// sequential passes plan equal-count slabs, spill each slab's galaxies plus
// halo to disk, and the engine computes one slab at a time.
//
// Deprecated: use Run with a Request whose Backend spec names "sharded"
// with Stream set.
func ComputeShardedStream(ctx context.Context, src CatalogSource, cfg Config, opts ShardOptions) (*Result, []ShardStats, error) {
	return runSharded(ctx, Request{Source: src, Config: cfg, Log: opts.Log}, opts, true)
}

// runSharded routes the deprecated sharded wrappers through Run, mapping
// the legacy ShardOptions onto the sharded backend and the uniform
// UnitStats back onto the legacy per-shard form.
func runSharded(ctx context.Context, req Request, opts ShardOptions, stream bool) (*Result, []ShardStats, error) {
	req.Via = exec.Sharded{
		NShards:       opts.NShards,
		MaxConcurrent: opts.MaxConcurrent,
		CheckpointDir: opts.CheckpointDir,
		Resume:        opts.Resume,
		Keep:          opts.Keep,
		Stream:        stream,
	}
	run, err := Run(ctx, req)
	if err != nil {
		return nil, nil, err
	}
	st := make([]ShardStats, len(run.Units))
	for i, u := range run.Units {
		st[i] = ShardStats{Shard: u.Unit, NOwned: u.NOwned, NHalo: u.NHalo,
			Pairs: u.Pairs, Elapsed: u.Elapsed, Resumed: u.Resumed}
	}
	return run.Result, st, nil
}

// SaveResult writes a Result checkpoint in the versioned binary format
// (atomic: written to a temporary file and renamed into place).
func SaveResult(path string, r *Result) error { return core.SaveResult(path, r) }

// LoadResult reads a Result checkpoint, rejecting unknown versions and
// corrupted or truncated files.
func LoadResult(path string) (*Result, error) { return core.LoadResult(path) }

// PerfReport is the machine-readable performance summary of one run:
// pairs/sec, model FLOP rate, and the per-phase timing breakdown. It
// serializes to JSON (WriteJSON / perfstat.ReadJSON) and is what the CI
// benchmark-regression gate compares against BENCH_baseline.json.
type PerfReport = perfstat.Report

// CollectPerf builds a PerfReport from any computed Result — single-shot,
// sharded, or distributed — plus the run's configuration (which contributes
// the worker/scheduling scenario fields) and wall clock.
func CollectPerf(label string, cfg Config, res *Result, elapsed time.Duration) *PerfReport {
	return perfstat.Collect(label, cfg, res, elapsed)
}

// ComparePerf gates a fresh report against a baseline, failing on more than
// tolerance fractional pairs/sec regression (see `make bench-check`).
func ComparePerf(baseline, fresh *PerfReport, tolerance float64) (string, error) {
	return perfstat.Compare(baseline, fresh, tolerance)
}

// BruteForce3PCF computes the anisotropic 3PCF by O(N^3) direct triplet
// counting — the verification oracle (use only on small catalogs).
func BruteForce3PCF(cat *Catalog, cfg Config) (*Result, error) {
	return bruteforce.Aniso(cat, cfg)
}

// GenerateUniform creates n galaxies uniformly in a periodic cube of side l.
func GenerateUniform(n int, l float64, seed int64) *Catalog {
	return catalog.Uniform(n, l, seed)
}

// GenerateClustered creates a halo-model clustered catalog.
func GenerateClustered(n int, l float64, p ClusterParams, seed int64) *Catalog {
	return catalog.Clustered(n, l, p, seed)
}

// GenerateBAO creates a catalog with galaxies on acoustic-scale shells.
func GenerateBAO(n int, l float64, p BAOParams, seed int64) *Catalog {
	return catalog.BAOShells(n, l, p, seed)
}

// DefaultClusterParams returns BOSS-like halo-model parameters.
func DefaultClusterParams() ClusterParams { return catalog.DefaultClusterParams() }

// DefaultBAOParams returns shell parameters at the acoustic scale.
func DefaultBAOParams() BAOParams { return catalog.DefaultBAOParams() }

// ApplyRSD returns a copy of the catalog with plane-parallel redshift-space
// displacement of amplitude sigmaZ along z.
func ApplyRSD(cat *Catalog, sigmaZ float64, seed int64) *Catalog {
	return catalog.ApplyRSD(cat, sigmaZ, seed)
}

// DataMinusRandom builds the weighted D-R field for survey-geometry
// correction (paper Sec. 6.1).
func DataMinusRandom(data, random *Catalog) (*Catalog, error) {
	return catalog.WithDataMinusRandom(data, random)
}

// LoadCatalog reads a catalog file (binary, or CSV for .csv paths).
func LoadCatalog(path string) (*Catalog, error) { return catalog.Load(path) }

// SaveCatalog writes a catalog in the binary format.
func SaveCatalog(path string, cat *Catalog) error { return catalog.SaveBinary(path, cat) }

// TwoPCFConfig holds 2PCF pair-count parameters.
type TwoPCFConfig = twopcf.Config

// PairCounts holds weighted Legendre pair counts of the anisotropic 2PCF.
type PairCounts = twopcf.PairCounts

// TwoPCF counts weighted pairs per radial bin and Legendre multipole.
func TwoPCF(cat *Catalog, cfg TwoPCFConfig) (*PairCounts, error) {
	return twopcf.Count(cat, cfg)
}

// LandySzalay computes the LS estimator of the 2PCF monopole.
func LandySzalay(data, random *Catalog, cfg TwoPCFConfig) ([]float64, error) {
	return twopcf.LandySzalay(data, random, cfg)
}

// CovarianceMatrix is a dense square matrix with inversion and diagnostics.
type CovarianceMatrix = stats.Matrix

// JackknifeCovariance estimates a covariance matrix from per-subvolume
// samples of a statistic (paper Sec. 6.1).
func JackknifeCovariance(samples [][]float64) (*CovarianceMatrix, error) {
	return stats.JackknifeCovariance(samples)
}

// SampleCovariance estimates a covariance from independent mock catalogs.
func SampleCovariance(samples [][]float64) (*CovarianceMatrix, error) {
	return stats.SampleCovariance(samples)
}

// EdgeCorrected holds survey-geometry-corrected isotropic multipoles.
type EdgeCorrected = estimator.Corrected

// EdgeCorrectedZeta runs the full survey-geometry correction of Sec. 6.1:
// it computes the 3PCF of the data-minus-randoms field and of the randoms,
// then inverts the Wigner-3j window mixing matrix per radial-bin pair to
// recover the true isotropic multipoles.
func EdgeCorrectedZeta(data, randoms *Catalog, cfg Config) (*EdgeCorrected, error) {
	return estimator.CorrectedZeta(data, randoms, cfg)
}

// Scenario is one row of the survey-science scenario registry: a named,
// seeded end-to-end workload (catalog recipe + Config + invariants) that
// runs through any Backend. The registry is the correctness gate every
// backend must pass; see DESIGN.md, "Scenario registry".
type Scenario = scenario.Scenario

// ScenarioInvariant is one machine-checked property of a scenario outcome.
type ScenarioInvariant = scenario.Invariant

// ScenarioOutcome carries everything a scenario run produced, plus the
// bitwise GoldenHash and tolerance-based MaxRelDiff comparison helpers.
type ScenarioOutcome = scenario.Outcome

// SurveyRun is the output of the data+randoms survey-estimator workload:
// the D-R and scaled-randoms stage runs and the edge-corrected multipoles.
type SurveyRun = scenario.Survey

// JackknifeRun is the output of the spatial-resampling workload: per-region
// leave-one-out statistic vectors and their jackknife covariance.
type JackknifeRun = scenario.Jackknife

// Scenarios returns the scenario registry rows in registration order.
func Scenarios() []*Scenario { return scenario.All() }

// ScenarioNames returns the sorted registry names.
func ScenarioNames() []string { return scenario.Names() }

// ScenarioByName resolves a registry entry.
func ScenarioByName(name string) (*Scenario, error) { return scenario.Get(name) }

// RunScenario runs a registry entry end-to-end through the backend at
// catalog size n (clamped up to the scenario's MinN) and checks every
// invariant; the first violation is returned as an error alongside the
// outcome.
func RunScenario(ctx context.Context, b Backend, name string, n int, seed int64) (*ScenarioOutcome, error) {
	s, err := scenario.Get(name)
	if err != nil {
		return nil, err
	}
	return s.RunChecked(ctx, b, n, seed)
}

// RunSurveyEstimator runs the backend-routed survey estimator of Sec. 6.1:
// the data-minus-randoms field and the scaled randoms each run through b
// (checkpointed backends keep disjoint per-stage checkpoint sets), then the
// mixing-matrix edge correction recovers the true isotropic multipoles.
func RunSurveyEstimator(ctx context.Context, b Backend, data, randoms *Catalog, cfg Config) (*SurveyRun, error) {
	return scenario.RunSurveyEstimator(ctx, b, data, randoms, cfg)
}

// RunJackknifeResampling runs the delete-one spatial jackknife of Sec. 6.1
// through the backend: the catalog is split into regions with the k-d
// partitioner, the full sample and every leave-one-out catalog run as
// independently resumable stages, and the statistic vectors feed the
// jackknife covariance.
func RunJackknifeResampling(ctx context.Context, b Backend, cat *Catalog, regions int, cfg Config) (*JackknifeRun, error) {
	return scenario.RunJackknife(ctx, b, cat, regions, cfg)
}

// MeshAssignment selects the mass-deposition scheme for gridded data.
type MeshAssignment = gridded.Assignment

// Mesh deposition schemes.
const (
	MeshNGP = gridded.NGP
	MeshCIC = gridded.CIC
)

// ComputeGridded deposits the catalog onto an n^3 mesh and runs the 3PCF
// over the occupied cells — the gridded-data acceleration of Sec. 6.3. The
// mesh cell must not exceed the radial bin width.
func ComputeGridded(cat *Catalog, meshN int, scheme MeshAssignment, cfg Config) (*Result, error) {
	res, _, err := gridded.Compute(cat, meshN, scheme, cfg)
	return res, err
}
